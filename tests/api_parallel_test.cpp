// Tests of the mutls::par algorithms layer: for_each / reduce over all
// forking models, divide_and_conquer (with and without a combine step),
// pipeline (independent and cross-item-dependent stages), and exactness
// under injected rollbacks.
#include <gtest/gtest.h>

#include <algorithm>

#include "mutls/mutls.h"

namespace mutls {
namespace {

Runtime::Options small_opts(int cpus = 2) {
  Runtime::Options o;
  o.num_cpus = cpus;
  o.buffer_log2 = 12;
  o.overflow_cap = 1024;
  return o;
}

TEST(ParForEach, ComputesEveryElementOnce) {
  for (ForkModel m : {ForkModel::kInOrder, ForkModel::kOutOfOrder,
                      ForkModel::kMixed}) {
    Runtime rt(small_opts());
    constexpr size_t kN = 200;
    SharedArray<uint64_t> out(rt, kN, 0);
    rt.run([&](Ctx& ctx) {
      par::for_each(rt, ctx, 0, static_cast<int64_t>(kN),
                    {.chunks = 8, .model = m}, [&](Ctx& c, int64_t i) {
                      out.span(c)[static_cast<size_t>(i)] =
                          static_cast<uint64_t>(i * i);
                    });
    });
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(out[i], static_cast<uint64_t>(i) * i)
          << fork_model_name(m) << " index " << i;
    }
  }
}

TEST(ParForEach, DefaultChunkCountAndEmptyRange) {
  Runtime rt(small_opts());
  SharedArray<uint64_t> out(rt, 64, 0);
  rt.run([&](Ctx& ctx) {
    par::for_each(rt, ctx, 0, 64, {}, [&](Ctx& c, int64_t i) {
      out.span(c)[static_cast<size_t>(i)] = 1;
    });
    par::for_each(rt, ctx, 5, 5, {}, [&](Ctx&, int64_t) {
      ADD_FAILURE() << "body must not run for an empty range";
    });
  });
  for (size_t i = 0; i < out.size(); ++i) ASSERT_EQ(out[i], 1u);
}

TEST(ParForEach, NestedDriverInsideSpeculatedRegion) {
  Runtime rt(small_opts(4));
  SharedArray<uint64_t> out(rt, 8, 0);
  rt.run([&](Ctx& ctx) {
    ScopedSpec s = rt.fork_scoped(ctx, ForkModel::kMixed, [&](Ctx& c) {
      par::for_each(rt, c, 0, 8, {.chunks = 4, .nested = true},
                    [&](Ctx& cc, int64_t i) {
                      out.span(cc)[static_cast<size_t>(i)] =
                          static_cast<uint64_t>(i + 100);
                    });
    });
  });
  for (size_t i = 0; i < out.size(); ++i) ASSERT_EQ(out[i], i + 100);
}

TEST(ParReduce, SumMatchesClosedForm) {
  for (ForkModel m : {ForkModel::kInOrder, ForkModel::kOutOfOrder,
                      ForkModel::kMixed}) {
    Runtime rt(small_opts());
    uint64_t total = 0;
    rt.run([&](Ctx& ctx) {
      total = par::reduce(rt, ctx, 0, 1000, {.chunks = 8, .model = m},
                          uint64_t{0}, [](Ctx&, int64_t i) {
                            return static_cast<uint64_t>(i);
                          });
    });
    EXPECT_EQ(total, 499500u) << fork_model_name(m);
  }
}

TEST(ParReduce, CustomCombineMin) {
  Runtime rt(small_opts());
  double best = 0.0;
  rt.run([&](Ctx& ctx) {
    best = par::reduce(
        rt, ctx, 0, 500, {.chunks = 8}, 1e300,
        [](Ctx&, int64_t i) {
          double x = static_cast<double>(i) - 250.5;
          return x * x;
        },
        [](double a, double b) { return std::min(a, b); });
  });
  EXPECT_DOUBLE_EQ(best, 0.25);
}

TEST(ParReduce, ExactUnderInjectedRollbacks) {
  Runtime::Options o = small_opts();
  o.rollback_probability = 0.5;
  o.seed = 99;
  Runtime rt(o);
  uint64_t total = 0;
  RunStats rs = rt.run([&](Ctx& ctx) {
    total = par::reduce(rt, ctx, 0, 400, {.chunks = 16}, uint64_t{0},
                        [](Ctx&, int64_t i) {
                          return static_cast<uint64_t>(i) * 3;
                        });
  });
  EXPECT_EQ(total, 3u * (399u * 400u / 2));
  EXPECT_GT(rs.speculative.rollbacks, 0u);
}

TEST(ParReduce, InsideSpeculatedRegionComputesInline) {
  // From a speculative context reduce must not allocate registered scratch
  // (it would be freed before the enclosing speculation commits); it
  // computes inline instead — and the result must still be exact after
  // the enclosing join, including across a rollback re-execution.
  Runtime rt(small_opts(2));
  SharedArray<uint64_t> out(rt, 1, 0);
  rt.run([&](Ctx& ctx) {
    ScopedSpec s = rt.fork_scoped(ctx, ForkModel::kMixed, [&](Ctx& c) {
      uint64_t t = par::reduce(rt, c, 0, 300, {.chunks = 4}, uint64_t{0},
                               [](Ctx&, int64_t i) {
                                 return static_cast<uint64_t>(i);
                               });
      out.at(c, 0) = t;
    });
  });
  EXPECT_EQ(out[0], 299u * 300u / 2);
}

// --- divide and conquer ----------------------------------------------------

struct Range {
  int64_t lo, hi;
};

TEST(ParDivideAndConquer, LeafWritesCoverTheRange) {
  for (int fork_levels : {0, 2, 8}) {
    Runtime rt(small_opts(4));
    constexpr size_t kN = 128;
    SharedArray<uint64_t> out(rt, kN, 0);
    rt.run([&](Ctx& ctx) {
      par::divide_and_conquer(
          rt, ctx, Range{0, kN},
          {.model = ForkModel::kMixed, .fork_levels = fork_levels},
          [](const Range& r) { return r.hi - r.lo <= 8; },
          [](const Range& r) {
            int64_t mid = r.lo + (r.hi - r.lo) / 2;
            return std::vector<Range>{{r.lo, mid}, {mid, r.hi}};
          },
          [&](Ctx& c, const Range& r) {
            SharedSpan<uint64_t> o = out.span(c);
            for (int64_t i = r.lo; i < r.hi; ++i) {
              o[static_cast<size_t>(i)] = static_cast<uint64_t>(i) + 7;
            }
          });
    });
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(out[i], i + 7) << "fork_levels " << fork_levels;
    }
  }
}

TEST(ParDivideAndConquer, CombineStepRunsAfterChildren) {
  // Segment-tree maximum: post() combines child results, so it must see
  // both halves' writes — commit ordering through the tree is the point.
  Runtime rt(small_opts(4));
  constexpr size_t kN = 64;
  SharedArray<uint64_t> vals(rt, kN, 0);
  SharedArray<uint64_t> seg(rt, 4 * kN, 0);
  for (size_t i = 0; i < kN; ++i) {
    vals[i] = (i * 2654435761u) % 1000;
  }
  struct Node {
    int64_t lo, hi;
    size_t idx;
  };
  rt.run([&](Ctx& ctx) {
    par::divide_and_conquer(
        rt, ctx, Node{0, kN, 1}, {.fork_levels = 3},
        [](const Node& n) { return n.hi - n.lo == 1; },
        [](const Node& n) {
          int64_t mid = n.lo + (n.hi - n.lo) / 2;
          return std::vector<Node>{{n.lo, mid, 2 * n.idx},
                                   {mid, n.hi, 2 * n.idx + 1}};
        },
        [&](Ctx& c, const Node& n) {
          seg.at(c, n.idx) = vals.span(c)[static_cast<size_t>(n.lo)].get();
        },
        [&](Ctx& c, const Node& n) {
          SharedSpan<uint64_t> s = seg.span(c);
          uint64_t l = s[2 * n.idx], r = s[2 * n.idx + 1];
          s[n.idx] = l > r ? l : r;
        });
  });
  uint64_t expect = 0;
  for (size_t i = 0; i < kN; ++i) expect = std::max(expect, vals[i]);
  EXPECT_EQ(seg[1], expect);
}

// --- pipeline --------------------------------------------------------------

TEST(ParPipeline, StagesRunInOrderPerItem) {
  Runtime rt(small_opts());
  constexpr size_t kN = 64;
  SharedArray<uint64_t> a(rt, kN, 0), b(rt, kN, 0), c3(rt, kN, 0);
  rt.run([&](Ctx& ctx) {
    par::pipeline(rt, ctx, kN,
                  {
                      [&](Ctx& c, int64_t i) {
                        a.span(c)[static_cast<size_t>(i)] =
                            static_cast<uint64_t>(i) + 1;
                      },
                      [&](Ctx& c, int64_t i) {
                        b.span(c)[static_cast<size_t>(i)] =
                            a.span(c)[static_cast<size_t>(i)] * 10;
                      },
                      [&](Ctx& c, int64_t i) {
                        c3.span(c)[static_cast<size_t>(i)] =
                            b.span(c)[static_cast<size_t>(i)] + 5;
                      },
                  },
                  {.chunks = 8});
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(c3[i], (i + 1) * 10 + 5) << i;
  }
}

TEST(ParPipeline, CrossItemDependencyStaysExact) {
  // Stage 2 computes a prefix sum: item i reads item i-1's output — the
  // classic flow dependency speculation must detect (or order) so results
  // stay exactly sequential.
  for (ForkModel m : {ForkModel::kInOrder, ForkModel::kMixed}) {
    Runtime rt(small_opts());
    constexpr size_t kN = 48;
    SharedArray<uint64_t> raw(rt, kN, 0), prefix(rt, kN, 0);
    rt.run([&](Ctx& ctx) {
      par::pipeline(rt, ctx, kN,
                    {
                        [&](Ctx& c, int64_t i) {
                          raw.span(c)[static_cast<size_t>(i)] =
                              static_cast<uint64_t>(i) * 2 + 1;
                        },
                        [&](Ctx& c, int64_t i) {
                          SharedSpan<uint64_t> p = prefix.span(c);
                          uint64_t prev =
                              i == 0 ? 0
                                     : p[static_cast<size_t>(i - 1)].get();
                          p[static_cast<size_t>(i)] =
                              prev + raw.span(c)[static_cast<size_t>(i)];
                        },
                    },
                    {.chunks = 12, .model = m});
    });
    // prefix[i] = sum of first i+1 odd numbers = (i+1)^2.
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(prefix[i], (i + 1) * (i + 1)) << fork_model_name(m) << " " << i;
    }
  }
}

TEST(ParPipeline, EmptyAndDegenerate) {
  Runtime rt(small_opts());
  rt.run([&](Ctx& ctx) {
    par::pipeline(rt, ctx, 0,
                  {[](Ctx&, int64_t) { ADD_FAILURE() << "no items"; }});
    par::pipeline(rt, ctx, 4, {});  // no stages: nothing to do
  });
}

}  // namespace
}  // namespace mutls
