// Task-tree models of the Table II benchmarks for the discrete-event
// simulator. Work amounts are virtual microseconds, calibrated to the
// paper's workload sizes; footprints (read/write words) follow each
// benchmark's actual buffering behaviour in the native runtime. The
// *shape* of each model mirrors the structured speculation of the
// corresponding workload in src/workloads/.
#pragma once

#include "sim/sim.h"

namespace mutls::sim {

// Chunked in-order loop chain (3x+1, mandelbrot, and one md/bh phase).
SimNode* build_chain(SimModel& m, int chunks, double work_per_chunk,
                     double read_words, double write_words);

// 3x+1: 64 chunks of pure compute, one result word each (paper: 40M ints).
SimModel model_threex(double total_work_us = 2.0e6, int chunks = 64);

// mandelbrot: 64 row-block chunks, each writing its block of the image.
SimModel model_mandelbrot(double total_work_us = 2.5e6, int chunks = 64,
                          int pixels = 512 * 512);

// md: `steps` sequential phases; each phase is a chunked force loop that
// reads every position and writes its own force rows (paper: 256
// particles, 400 steps).
SimModel model_md(int particles = 256, int steps = 400, int chunks = 64,
                  double step_work_us = 5000);

// bh: like md but each phase starts with a sequential tree build on the
// critical path, and force chunks read a large tree footprint (paper:
// 12800 bodies).
SimModel model_bh(int bodies = 12800, int steps = 8, int chunks = 64,
                  double step_work_us = 60000, double build_fraction = 0.115);

// fft: binary divide-and-conquer; each node speculates its second half,
// executes the first half inline and then combines (paper: 2^20 doubles).
SimModel model_fft(int log2_n = 20, int fork_levels = 6,
                   double us_per_element_level = 0.012);

// matmult: quadrant recursion, 4 sub-tasks per level, each sub-task an
// assign-multiply followed by an accumulate-multiply whose speculated
// sub-sub-tasks conflict (paper: 1024x1024 doubles).
SimModel model_matmult(int n = 1024, int leaf = 128, int fork_levels = 2,
                       double us_per_leaf_mul = 0.0025);

// nqueen: candidate-chain DFS with speculation above the cutoff depth
// (paper: 14 queens).
SimModel model_nqueen(int n = 14, int cutoff = 3, double leaf_us = 900);

// tsp: same DFS skeleton with factorial branching (paper: 12 cities).
SimModel model_tsp(int n = 12, int cutoff = 3, double leaf_us = 450);

// http-serving: batches of request chunks against a shared cache index —
// the server-shaped workload (src/serving/). Tiny per-chunk work relative
// to fork cost and a buffered footprint of a few index words per request;
// not part of Table II (paper_models() stays the paper's suite).
SimModel model_http_serving(int batches = 64, int chunks = 8,
                            int requests_per_chunk = 32,
                            double us_per_request = 1.5);

struct NamedModel {
  const char* name;
  SimModel (*build)();
  bool compute_intensive;
};

// The full Table II suite with paper-sized parameters.
const std::vector<NamedModel>& paper_models();

}  // namespace mutls::sim
