#include "runtime/global_buffer.h"

#include <algorithm>

namespace mutls {

void BufferMap::init(int log2_entries, size_t overflow_cap, bool with_marks,
                     SpecBufferStats* stats) {
  MUTLS_CHECK(log2_entries >= 4 && log2_entries <= 28,
              "buffer log2 size out of range");
  size_t n = size_t{1} << log2_entries;
  buffer_ = std::make_unique<uint64_t[]>(n);
  addresses_ = std::make_unique<uintptr_t[]>(n);
  std::fill_n(addresses_.get(), n, uintptr_t{0});
  if (with_marks) {
    marks_ = std::make_unique<uint64_t[]>(n);
  }
  offsets_.reserve(1024);
  overflow_.reserve(std::min<size_t>(overflow_cap, 1024));
  mask_ = n - 1;
  overflow_cap_ = overflow_cap;
  stats_ = stats;
}

BufferMap::Find BufferMap::find_or_insert(uintptr_t word_addr, Slot& out) {
  MUTLS_DCHECK((word_addr & kWordMask) == 0, "unaligned word address");
  size_t idx = slot_index(word_addr);
  if (stats_) ++stats_->probe_ops;
  if (addresses_[idx] == word_addr) {
    out.data = &buffer_[idx];
    out.mark = marks_ ? &marks_[idx] : nullptr;
    out.table_index = static_cast<uint32_t>(idx);
    return Find::kFound;
  }
  if (addresses_[idx] == 0) {
    addresses_[idx] = word_addr;
    buffer_[idx] = 0;
    if (marks_) marks_[idx] = 0;
    offsets_.push_back(static_cast<uint32_t>(idx));
    out.data = &buffer_[idx];
    out.mark = marks_ ? &marks_[idx] : nullptr;
    out.table_index = static_cast<uint32_t>(idx);
    return Find::kInserted;
  }
  // Slot collision: the paper's "temporary buffer" path. The linear scan is
  // this map's probe sequence.
  for (OverflowEntry& e : overflow_) {
    if (stats_) ++stats_->probe_steps;
    if (e.word_addr == word_addr) {
      out.data = &e.data;
      out.mark = marks_ ? &e.mark : nullptr;
      out.table_index = kNoSlot;
      return Find::kFound;
    }
  }
  if (overflow_.size() >= overflow_cap_) {
    return Find::kFull;
  }
  overflow_.push_back(OverflowEntry{word_addr, 0, 0});
  out.data = &overflow_.back().data;
  out.mark = marks_ ? &overflow_.back().mark : nullptr;
  out.table_index = kNoSlot;
  return Find::kInserted;
}

bool BufferMap::find(uintptr_t word_addr, Slot& out) {
  size_t idx = slot_index(word_addr);
  if (stats_) ++stats_->probe_ops;
  if (addresses_[idx] == word_addr) {
    out.data = &buffer_[idx];
    out.mark = marks_ ? &marks_[idx] : nullptr;
    out.table_index = static_cast<uint32_t>(idx);
    return true;
  }
  if (addresses_[idx] == 0) return false;
  for (OverflowEntry& e : overflow_) {
    if (stats_) ++stats_->probe_steps;
    if (e.word_addr == word_addr) {
      out.data = &e.data;
      out.mark = marks_ ? &e.mark : nullptr;
      out.table_index = kNoSlot;
      return true;
    }
  }
  return false;
}

void BufferMap::clear() {
  for (uint32_t idx : offsets_) addresses_[idx] = 0;
  offsets_.clear();
  overflow_.clear();
}

void GlobalBuffer::init(int log2_entries, size_t overflow_cap,
                        SpecBufferStats* stats) {
  stats_ = stats;
  read_set_.init(log2_entries, overflow_cap, /*with_marks=*/false, stats);
  write_set_.init(log2_entries, overflow_cap, /*with_marks=*/true, stats);
}

WordRef GlobalBuffer::find_read(uintptr_t word_addr) {
  BufferMap::Slot s;
  return read_set_.find(word_addr, s) ? as_ref(s) : WordRef{};
}

WordRef GlobalBuffer::find_write(uintptr_t word_addr) {
  BufferMap::Slot s;
  return write_set_.find(word_addr, s) ? as_ref(s) : WordRef{};
}

WordRef GlobalBuffer::insert_read(uintptr_t word_addr, bool& inserted,
                                  bool merging) {
  BufferMap::Slot s;
  switch (read_set_.find_or_insert(word_addr, s)) {
    case BufferMap::Find::kFound:
      inserted = false;
      return as_ref(s);
    case BufferMap::Find::kInserted:
      inserted = true;
      return as_ref(s);
    case BufferMap::Find::kFull:
    default:
      doom(merging ? "read-set overflow while adopting a child commit"
                   : "read-set overflow buffer full");
      ++stats_->overflow_events;
      return WordRef{};
  }
}

WordRef GlobalBuffer::insert_write(uintptr_t word_addr, bool merging) {
  BufferMap::Slot s;
  if (write_set_.find_or_insert(word_addr, s) == BufferMap::Find::kFull) {
    doom(merging ? "write-set overflow while adopting a child commit"
                 : "write-set overflow buffer full");
    ++stats_->overflow_events;
    return WordRef{};
  }
  return as_ref(s);
}

void GlobalBuffer::reset() {
  read_set_.clear();
  write_set_.clear();
  doomed_ = false;
  doom_reason_ = "";
  // The stats block belongs to the owning SpecBuffer and intentionally
  // survives reset: the settle paths read the counters after resetting.
}

}  // namespace mutls
