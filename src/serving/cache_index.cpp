#include "serving/cache_index.h"

#include "api/spec.h"
#include "workloads/workload.h"

namespace mutls::serving {

namespace {
std::vector<uint64_t> make_slots(size_t capacity_log2) {
  MUTLS_CHECK(capacity_log2 >= 1 && capacity_log2 <= 28,
              "cache capacity_log2 out of range");
  return std::vector<uint64_t>((size_t{1} << capacity_log2) *
                               CacheIndex::kWordsPerEntry);
}
}  // namespace

CacheIndex::CacheIndex(Runtime& rt, size_t capacity_log2)
    : rt_(&rt),
      capacity_(size_t{1} << capacity_log2),
      mask_(capacity_ - 1),
      slots_(make_slots(capacity_log2)) {
  rt_->register_memory(slots_.data(), slots_.size() * sizeof(uint64_t));
}

CacheIndex::CacheIndex(size_t capacity_log2)
    : rt_(nullptr),
      capacity_(size_t{1} << capacity_log2),
      mask_(capacity_ - 1),
      slots_(make_slots(capacity_log2)) {}

CacheIndex::~CacheIndex() {
  if (rt_ != nullptr) {
    rt_->unregister_memory(slots_.data(), slots_.size() * sizeof(uint64_t));
  }
}

size_t CacheIndex::live_entries() const {
  size_t n = 0;
  for (size_t slot = 0; slot < capacity_; ++slot) {
    if (slots_[slot * kWordsPerEntry + kKeyWord] != kEmptyKey) ++n;
  }
  return n;
}

uint64_t CacheIndex::checksum() const {
  uint64_t h = workloads::hash_begin();
  for (uint64_t w : slots_) h = workloads::hash_mix(h, w);
  return h;
}

void CacheIndex::clear() {
  std::fill(slots_.begin(), slots_.end(), 0);
}

}  // namespace mutls::serving
