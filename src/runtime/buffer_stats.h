// Cost counters of a speculative-buffer backend.
//
// Every SpecBuffer backend accumulates the same counter set so backend
// comparisons (bench_ablation_buffer_map, bench_micro_runtime) carry their
// cost breakdown: a static-hash run reports overflow exhaustions, a
// growable-log run reports rehashes and probe lengths, and both report how
// many words validation had to compare. The counters survive reset() — the
// settle paths read them after resetting the buffer — and are zeroed by
// clear_stats() when a virtual-CPU slot is re-armed for a new speculation.
#pragma once

#include <cstdint>

namespace mutls {

struct SpecBufferStats {
  uint64_t overflow_events = 0;  // capacity-exhaustion dooms: the bounded
                                 // overflow map (static hash) or the hard
                                 // index cap (growable log). Feeds the
                                 // adaptive flip threshold uniformly.
  uint64_t resize_events = 0;    // growable-log: index rehashes
  uint64_t probe_steps = 0;      // open-addressing steps beyond the home slot
  uint64_t probe_ops = 0;        // probed lookups (avg length = steps / ops)
  uint64_t validated_words = 0;  // read-set words compared at validation
  uint64_t fastpath_hits = 0;    // aligned-word accesses that skipped the
                                 // byte-splitting loop (SpecBuffer level)
  uint64_t mru_hits = 0;         // word-view resolutions served by the MRU
                                 // slot cache (backend level)
  uint64_t mru_misses = 0;       // resolutions that had to probe the sets
  uint64_t probe_skips = 0;      // set probes the MRU hits avoided
  uint64_t backend_flips = 0;    // adaptive: this speculation started on a
                                 // freshly flipped backend (the flipped
                                 // *state* persists per slot; the counter,
                                 // like the rest, is per speculation)
  uint64_t alloc_events = 0;     // heap-fallback allocations the slot's
                                 // arena performed during this speculation
                                 // (segment growth, pool misses, oversized
                                 // closures). Zero at steady state — the
                                 // invariant the CI alloc budget enforces.
  uint64_t predicted_reads = 0;  // first-touch reads adopted from a
                                 // confident predictor entry instead of
                                 // memory (value prediction enabled only)
  uint64_t predictor_hits = 0;   // predicted reads whose predicted value
                                 // matched the settled value at validation
  uint64_t predictor_mispredicts = 0;  // predicted reads whose prediction
                                       // missed — contained by the doom
                                       // path with the mispredict reason
  uint64_t saved_rollbacks = 0;  // speculations that validated *because*
                                 // prediction overrode a stale observation
                                 // (some predicted read saw memory change
                                 // under it) — each one is a rollback the
                                 // unpredicted runtime provably pays
  uint64_t shard_probe_steps = 0;   // numa-sharded: address-range routing
                                    // decisions taken (one per find/insert
                                    // reaching the sharded store)
  uint64_t local_commit_words = 0;  // numa-sharded: write-set words that
                                    // resided in the committing slot's
                                    // *home* shard — the node-local
                                    // fraction of the commit stream

  void clear() { *this = SpecBufferStats{}; }

  // Average open-addressing probe length per lookup (0 when none ran).
  double avg_probe_length() const {
    return probe_ops ? static_cast<double>(probe_steps) /
                           static_cast<double>(probe_ops)
                     : 0.0;
  }

  SpecBufferStats& operator+=(const SpecBufferStats& o) {
    overflow_events += o.overflow_events;
    resize_events += o.resize_events;
    probe_steps += o.probe_steps;
    probe_ops += o.probe_ops;
    validated_words += o.validated_words;
    fastpath_hits += o.fastpath_hits;
    mru_hits += o.mru_hits;
    mru_misses += o.mru_misses;
    probe_skips += o.probe_skips;
    backend_flips += o.backend_flips;
    alloc_events += o.alloc_events;
    predicted_reads += o.predicted_reads;
    predictor_hits += o.predictor_hits;
    predictor_mispredicts += o.predictor_mispredicts;
    saved_rollbacks += o.saved_rollbacks;
    shard_probe_steps += o.shard_probe_steps;
    local_commit_words += o.local_commit_words;
    return *this;
  }
};

}  // namespace mutls
