#include "serving/http_parse.h"

#include <cstring>

namespace mutls::serving {

namespace {

// RFC 9110 tchar: the characters legal in a token (methods, header names).
constexpr bool is_tchar(char c) {
  if (c >= 'a' && c <= 'z') return true;
  if (c >= 'A' && c <= 'Z') return true;
  if (c >= '0' && c <= '9') return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

// Legal in a request target (origin-form): visible ASCII except SP; the
// target grammar proper is stricter, but excluding CTLs and whitespace is
// what keeps the parse single-pass and bounded.
constexpr bool is_target_char(char c) {
  return c > ' ' && c != 0x7f;
}

// Legal in a header value: visible ASCII, SP and HTAB (obs-text excluded —
// the serving path has no use for it and rejecting keeps values clean).
constexpr bool is_value_char(char c) {
  return c == '\t' || (c >= ' ' && c != 0x7f);
}

constexpr bool is_ows(char c) { return c == ' ' || c == '\t'; }

bool ascii_iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    char x = a[i], y = b[i];
    if (x >= 'A' && x <= 'Z') x = static_cast<char>(x - 'A' + 'a');
    if (y >= 'A' && y <= 'Z') y = static_cast<char>(y - 'A' + 'a');
    if (x != y) return false;
  }
  return true;
}

Method method_of(std::string_view token) {
  if (token == "GET") return Method::kGet;
  if (token == "PUT") return Method::kPut;
  if (token == "POST") return Method::kPost;
  if (token == "HEAD") return Method::kHead;
  if (token == "DELETE") return Method::kDelete;
  return Method::kOther;
}

// One CRLF-terminated line starting at `pos`. Returns kOk with the line
// content (CRLF excluded) and advances pos past the CRLF; kIncomplete when
// the buffer ends before the CRLF; kMalformed on a bare LF, a stray CR or
// a line exceeding kMaxLine.
ParseStatus take_line(std::string_view buf, size_t* pos,
                      std::string_view* line) {
  size_t start = *pos;
  size_t limit = buf.size();
  if (limit - start > kMaxLine) limit = start + kMaxLine;
  for (size_t i = start; i < limit; ++i) {
    char c = buf[i];
    if (c == '\r') {
      if (i + 1 >= buf.size()) return ParseStatus::kIncomplete;
      if (buf[i + 1] != '\n') return ParseStatus::kMalformed;
      *line = buf.substr(start, i - start);
      *pos = i + 2;
      return ParseStatus::kOk;
    }
    if (c == '\n') return ParseStatus::kMalformed;  // bare LF
  }
  // No terminator within the window: past kMaxLine it can never become
  // well-formed, otherwise more bytes could still complete the line.
  return limit < buf.size() ? ParseStatus::kMalformed
                            : ParseStatus::kIncomplete;
}

bool all_of(std::string_view s, bool (*pred)(char)) {
  for (char c : s) {
    if (!pred(c)) return false;
  }
  return true;
}

}  // namespace

const char* method_name(Method m) {
  switch (m) {
    case Method::kGet: return "GET";
    case Method::kHead: return "HEAD";
    case Method::kPut: return "PUT";
    case Method::kPost: return "POST";
    case Method::kDelete: return "DELETE";
    case Method::kOther: return "OTHER";
  }
  return "?";
}

std::string_view ParsedRequest::header_value(std::string_view name) const {
  for (size_t i = 0; i < header_count; ++i) {
    if (ascii_iequals(header(i).name, name)) return header(i).value;
  }
  return {};
}

bool ParsedRequest::has_header(std::string_view name) const {
  for (size_t i = 0; i < header_count; ++i) {
    if (ascii_iequals(header(i).name, name)) return true;
  }
  return false;
}

ParseStatus parse_request(std::string_view buf, ParsedRequest& out,
                          Arena* arena) {
  out = ParsedRequest{};
  auto fail = [&](ParseStatus s) {
    out = ParsedRequest{};
    out.status = s;
    return s;
  };

  // --- request line: METHOD SP TARGET SP VERSION CRLF ---
  size_t pos = 0;
  std::string_view line;
  ParseStatus s = take_line(buf, &pos, &line);
  if (s != ParseStatus::kOk) return fail(s);

  size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return fail(ParseStatus::kMalformed);
  size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return fail(ParseStatus::kMalformed);
  std::string_view method = line.substr(0, sp1);
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string_view version = line.substr(sp2 + 1);

  if (method.empty() || !all_of(method, is_tchar)) {
    return fail(ParseStatus::kMalformed);
  }
  // Origin-form target only: "/path[?query]". (The single-SP splits above
  // already reject "GET  /x" — the double space yields an empty target.)
  if (target.empty() || target[0] != '/' ||
      !all_of(target, is_target_char)) {
    return fail(ParseStatus::kMalformed);
  }
  // HTTP/1.x exactly: 8 chars, fixed prefix, one digit minor.
  if (version.size() != 8 || version.substr(0, 7) != "HTTP/1." ||
      version[7] < '0' || version[7] > '9') {
    return fail(ParseStatus::kMalformed);
  }

  out.method_text = method;
  out.method = method_of(method);
  out.target = target;
  size_t q = target.find('?');
  out.path = q == std::string_view::npos ? target : target.substr(0, q);
  out.query = q == std::string_view::npos ? std::string_view{}
                                          : target.substr(q + 1);
  out.version = version;

  // --- header fields until the empty line ---
  while (true) {
    s = take_line(buf, &pos, &line);
    if (s != ParseStatus::kOk) return fail(s);
    if (line.empty()) break;  // CRLF CRLF: end of head

    size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return fail(ParseStatus::kMalformed);
    }
    std::string_view name = line.substr(0, colon);
    // No whitespace between the field name and the colon (RFC 9112 §5.1
    // MUST-reject: response-splitting hygiene).
    if (!all_of(name, is_tchar)) return fail(ParseStatus::kMalformed);
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && is_ows(value.front())) value.remove_prefix(1);
    while (!value.empty() && is_ows(value.back())) value.remove_suffix(1);
    if (!all_of(value, is_value_char)) return fail(ParseStatus::kMalformed);

    if (out.header_count == kMaxHeaders) return fail(ParseStatus::kMalformed);
    if (out.header_count == kInlineHeaders && out.spill_ == nullptr) {
      if (arena == nullptr) {
        // No spill storage: bound the header set at the inline capacity
        // (431 Request Header Fields Too Large, in parser form).
        return fail(ParseStatus::kMalformed);
      }
      auto* spill = static_cast<HeaderField*>(
          arena->alloc(kMaxHeaders * sizeof(HeaderField),
                       alignof(HeaderField)));
      std::memcpy(spill, out.inline_, sizeof(out.inline_));
      out.spill_ = spill;
    }
    HeaderField* fields = out.spill_ ? out.spill_ : out.inline_;
    fields[out.header_count++] = HeaderField{name, value};
  }

  out.consumed = pos;
  out.status = ParseStatus::kOk;
  return ParseStatus::kOk;
}

bool parse_decimal(std::string_view s, uint64_t* out) {
  if (s.empty() || s.size() > 20) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return false;
    v = v * 10 + digit;
  }
  *out = v;
  return true;
}

}  // namespace mutls::serving
