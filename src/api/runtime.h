// Native C++ embedding of MUTLS.
//
// This is the call sequence the paper's speculator pass emits, packaged as
// a direct API so C++ programs can speculate without going through the IR
// path: fork() is MUTLS_get_CPU + save-live-locals + MUTLS_speculate,
// join() is MUTLS_validate_local + MUTLS_synchronize (re-executing the
// speculated region inline on rollback, exactly what the non-speculative
// thread does after a failed speculation), Ctx::load/store are the
// MUTLS_load_*/MUTLS_store_* wrappers, and Ctx::check_point is
// MUTLS_check_point. The end of a speculated region is its barrier point.
//
// Usage sketch (tree-form divide and conquer):
//
//   mutls::Runtime rt({.num_cpus = 8});
//   rt.run([&](mutls::Ctx& ctx) { solve(rt, ctx, root_problem); });
//
//   void solve(Runtime& rt, Ctx& ctx, Problem p) {
//     if (p.small()) { leaf(ctx, p); return; }
//     auto [a, b] = p.split();
//     mutls::Spec s = rt.fork(ctx, ForkModel::kMixed,
//                             [&, b](Ctx& c) { solve(rt, c, b); });
//     solve(rt, ctx, a);
//     rt.join(ctx, s);   // commit, or re-execute b inline on rollback
//     p.combine(ctx);
//   }
#pragma once

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "api/scalar_access.h"
#include "runtime/spec_abort.h"
#include "runtime/thread_manager.h"

namespace mutls {

class Runtime;

// Execution context of one thread (speculative or not). Every shared-memory
// access inside a speculated region must go through this wrapper.
class Ctx {
 public:
  bool speculative() const { return td_->is_speculative(); }
  int rank() const { return td_->rank; }
  Runtime& runtime() const { return *rt_; }
  ThreadData& thread_data() const { return *td_; }

  template <typename T>
  T load(const T* p) {
    static_assert(std::is_trivially_copyable_v<T>);
    ++td_->stats.loads;
    if (!td_->is_speculative()) {
      return relaxed_load_scalar(p);
    }
    uintptr_t a = reinterpret_cast<uintptr_t>(p);
    check_registered(a, sizeof(T));
    T out;
    td_->gbuf.load_bytes(a, &out, sizeof(T));
    if (td_->gbuf.doomed()) throw SpecAbort{td_->gbuf.doom_reason()};
    return out;
  }

  template <typename T>
  void store(T* p, T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    ++td_->stats.stores;
    if (!td_->is_speculative()) {
      relaxed_store_scalar(p, v);
      return;
    }
    uintptr_t a = reinterpret_cast<uintptr_t>(p);
    check_registered(a, sizeof(T));
    td_->gbuf.store_bytes(a, &v, sizeof(T));
    if (td_->gbuf.doomed()) throw SpecAbort{td_->gbuf.doom_reason()};
  }

  // Read-modify-write convenience.
  template <typename T>
  void add(T* p, T v) {
    store(p, static_cast<T>(load(p) + v));
  }

  // MUTLS_check_point: polls the synchronization flags. Inserted inside
  // loops and before calls so a speculative thread notices abort signals
  // promptly (paper IV-E).
  void check_point() {
    if (!td_->is_speculative()) return;
    SyncStatus s = td_->sync_status.load(std::memory_order_acquire);
    if (s == SyncStatus::kNoSync) {
      throw SpecAbort{"NOSYNC received at check point"};
    }
    if (td_->gbuf.doomed()) throw SpecAbort{td_->gbuf.doom_reason()};
  }

  // Live-in value stored at fork (paper IV-G3): reads slot `offset` of this
  // thread's RegisterBuffer.
  template <typename T>
  T get_livein(int offset) {
    static_assert(sizeof(T) <= 8 && std::is_trivially_copyable_v<T>);
    uint64_t raw = 0;
    if (!td_->lbuf.top().regs.get(offset, raw)) {
      td_->gbuf.doom("register buffer offset out of range");
      throw SpecAbort{"register buffer offset out of range"};
    }
    T out;
    std::memcpy(&out, &raw, sizeof(T));
    return out;
  }

 private:
  friend class Runtime;
  Ctx(Runtime& rt, ThreadData& td) : rt_(&rt), td_(&td) {}

  void check_registered(uintptr_t a, size_t n);

  Runtime* rt_;
  ThreadData* td_;
  // Small cache of recent address-space lookups: workloads typically touch
  // a handful of registered arrays in rotation, so a few entries remove
  // the shared-mutex lookup from the speculative hot path entirely.
  static constexpr int kSpanCache = 4;
  uintptr_t span_lo_[kSpanCache] = {1, 1, 1, 1};
  uintptr_t span_hi_[kSpanCache] = {0, 0, 0, 0};
  int span_next_ = 0;
};

// Live-in prediction (paper IV-G4): `parent_addr` names the parent-side
// variable; `predicted` is the value the child was given. At the join
// point the parent validates that its variable indeed holds the predicted
// value, otherwise the child is forced to roll back.
struct Prediction {
  const void* parent_addr;
  uint64_t predicted;
  size_t size;

  template <typename T>
  static Prediction of(const T* addr, T value) {
    static_assert(sizeof(T) <= 8 && std::is_trivially_copyable_v<T>);
    uint64_t raw = 0;
    std::memcpy(&raw, &value, sizeof(T));
    return Prediction{addr, raw, sizeof(T)};
  }
};

// Handle of one speculation attempt; also carries the speculated region so
// join() can execute it inline when speculation failed or rolled back.
class Spec {
 public:
  bool speculated() const { return speculated_; }
  int rank() const { return ref_.rank; }

 private:
  friend class Runtime;
  ChildRef ref_;
  bool speculated_ = false;
  std::function<void(Ctx&)> task_;
  std::vector<Prediction> predictions_;
};

enum class JoinOutcome {
  kCommitted,   // speculation validated and committed
  kRolledBack,  // speculation failed; region re-executed inline
  kSequential,  // speculation was never granted; region executed inline
};

class Runtime {
 public:
  struct Options {
    int num_cpus = 4;
    int buffer_log2 = 16;
    size_t overflow_cap = 4096;
    int register_slots = 256;
    double rollback_probability = 0.0;
    uint64_t seed = 0x5eed;
    std::optional<ForkModel> model_override;
  };

  explicit Runtime(const Options& opt)
      : mgr_(ManagerConfig{opt.num_cpus, opt.buffer_log2, opt.overflow_cap,
                           opt.register_slots, opt.rollback_probability,
                           opt.seed, opt.model_override}) {}

  // __builtin_MUTLS_fork: attempts to speculate `body` (the code that
  // follows the matching join point). Returns a handle; when speculation is
  // denied the handle simply defers `body` to join().
  template <typename F>
  Spec fork(Ctx& ctx, ForkModel model, F&& body) {
    return fork_predicted(ctx, model, {}, std::forward<F>(body));
  }

  // fork with live-in value prediction: `preds[i]` is stored into the
  // child's RegisterBuffer slot i (readable via Ctx::get_livein<T>(i)) and
  // validated against the parent's variable at the join point.
  template <typename F>
  Spec fork_predicted(Ctx& ctx, ForkModel model,
                      std::vector<Prediction> preds, F&& body) {
    Spec s;
    s.task_ = std::function<void(Ctx&)>(std::forward<F>(body));
    s.predictions_ = std::move(preds);
    auto task = s.task_;
    const std::vector<Prediction>& predictions = s.predictions_;
    // MUTLS_set_regvar_*: the proxy stores predicted live-ins into the
    // child's RegisterBuffer before the stub starts consuming them.
    auto setup = [&predictions](ThreadData& child) {
      int off = 0;
      for (const Prediction& p : predictions) {
        child.lbuf.top().regs.set(off++, p.predicted);
      }
    };
    int rank = mgr_.speculate(
        ctx.thread_data(), model,
        [this, task](ThreadData& td) {
          Ctx child(*this, td);
          task(child);
        },
        setup);
    if (rank != 0) {
      s.speculated_ = true;
      s.ref_ = ctx.thread_data().children.back();
    }
    return s;
  }

  // Detached fork used by the loop-chain pattern: the forker does NOT join
  // this child; the child is left on the children stack to be *adopted* by
  // whoever joins the forker (paper IV-F: a joined child's children are
  // preserved). `tag` is an opaque payload the eventual joiner receives,
  // used to re-execute the region after a rollback.
  template <typename F>
  bool fork_tagged(Ctx& ctx, ForkModel model, uint64_t tag, F&& body) {
    auto task = std::function<void(Ctx&)>(std::forward<F>(body));
    int rank = mgr_.speculate(
        ctx.thread_data(), model,
        [this, task](ThreadData& td) {
          Ctx child(*this, td);
          task(child);
        },
        [tag](ThreadData& child) { child.user_tag = tag; });
    return rank != 0;
  }

  struct AdoptedJoin {
    bool joined = false;  // false: no child was on the stack
    JoinOutcome outcome = JoinOutcome::kSequential;
    uint64_t tag = 0;
  };

  // Joins the most recent child on the caller's children stack (own or
  // adopted). On rollback the caller is responsible for re-executing the
  // region identified by `tag` (typically after NOSYNC-ing the rest of the
  // chain, since in-order semantics cascade the rollback).
  AdoptedJoin join_next(Ctx& ctx) {
    AdoptedJoin r;
    ThreadData& td = ctx.thread_data();
    if (td.children.empty()) return r;
    r.joined = true;
    ChildRef ref = td.children.back();
    auto jr = mgr_.synchronize(td, ref, false, &r.tag);
    r.outcome = jr == ThreadManager::JoinResult::kCommit
                    ? JoinOutcome::kCommitted
                    : JoinOutcome::kRolledBack;
    return r;
  }

  // __builtin_MUTLS_join: synchronizes with the speculation `s`. On commit
  // the speculated effects are already visible through the joiner's view;
  // on rollback (or when speculation never happened) the region runs inline
  // in the joiner's context.
  JoinOutcome join(Ctx& ctx, Spec& s) {
    if (!s.speculated_) {
      s.task_(ctx);
      return JoinOutcome::kSequential;
    }
    // MUTLS_validate_local: live-in predictions must match the parent's
    // actual values at the join point (paper IV-G4).
    bool force_rollback = false;
    for (const Prediction& p : s.predictions_) {
      uint64_t cur = 0;
      std::memcpy(&cur, p.parent_addr, p.size);
      uint64_t want = 0;
      std::memcpy(&want, &p.predicted, p.size);
      if (cur != want) {
        force_rollback = true;
        break;
      }
    }
    ThreadManager::JoinResult r =
        mgr_.synchronize(ctx.thread_data(), s.ref_, force_rollback);
    if (r == ThreadManager::JoinResult::kCommit) {
      return JoinOutcome::kCommitted;
    }
    s.task_(ctx);
    return JoinOutcome::kRolledBack;
  }

  // Runs `f` as the non-speculative thread of one measured region and
  // returns the aggregated statistics of the run.
  template <typename F>
  RunStats run(F&& f) {
    mgr_.begin_run();
    Ctx root(*this, mgr_.root());
    f(root);
    // Joins and discards are synchronous handshakes, so a conforming run
    // ends with no live speculation; the bounded drain below only covers
    // protocol violations (a fork the user never joined) so they surface
    // as a CHECK instead of a hang.
    uint64_t deadline = now_ns() + 5'000'000'000ull;
    while (mgr_.live_threads() != 0 && now_ns() < deadline) {
      std::this_thread::yield();
    }
    MUTLS_CHECK(mgr_.live_threads() == 0,
                "speculative threads outlived the run (missing join)");
    mgr_.end_run();
    return mgr_.collect_stats();
  }

  // Address-space registration (paper IV-G1).
  void register_memory(const void* p, size_t n) { mgr_.register_space(p, n); }
  void unregister_memory(const void* p, size_t n) {
    mgr_.unregister_space(p, n);
  }

  ThreadManager& manager() { return mgr_; }
  int num_cpus() const { return mgr_.num_cpus(); }

 private:
  friend class Ctx;

  ThreadManager mgr_;
};

// RAII registered heap array: the paper intercepts malloc/new to register
// heap objects; in the embedding this wrapper plays that role.
template <typename T>
class SharedArray {
 public:
  SharedArray(Runtime& rt, size_t n, T init = T{})
      : rt_(&rt), data_(n, init) {
    rt_->register_memory(data_.data(), n * sizeof(T));
  }
  ~SharedArray() {
    rt_->unregister_memory(data_.data(), data_.size() * sizeof(T));
  }

  SharedArray(const SharedArray&) = delete;
  SharedArray& operator=(const SharedArray&) = delete;

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  size_t size() const { return data_.size(); }
  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }

 private:
  Runtime* rt_;
  std::vector<T> data_;
};

// RAII registration of an existing object (static / stack-shared data).
class RegisteredRegion {
 public:
  RegisteredRegion(Runtime& rt, const void* p, size_t n)
      : rt_(&rt), p_(p), n_(n) {
    rt_->register_memory(p, n);
  }
  ~RegisteredRegion() { rt_->unregister_memory(p_, n_); }

  RegisteredRegion(const RegisteredRegion&) = delete;
  RegisteredRegion& operator=(const RegisteredRegion&) = delete;

 private:
  Runtime* rt_;
  const void* p_;
  size_t n_;
};

// Nested in-order loop driver: each chain link runs one chunk and joins the
// speculated remainder itself. Simple, but a link whose fork was denied
// executes the whole remaining range inline while earlier links wait at
// their barriers — parallelism collapses when chunks exceed CPUs. Kept for
// comparison (ablation) and for nesting inside other speculated regions.
// The body receives (ctx, chunk_index, lo, hi).
template <typename BodyFn>
void spec_for_nested(Runtime& rt, Ctx& ctx, int64_t begin, int64_t end,
                     int chunks, ForkModel model, const BodyFn& body) {
  if (begin >= end || chunks <= 0) return;
  struct Driver {
    Runtime& rt;
    int64_t begin, end;
    int chunks;
    ForkModel model;
    const BodyFn& body;

    int64_t bound(int i) const {
      return begin + (end - begin) * i / chunks;
    }

    void run(Ctx& c, int i) const {
      if (i + 1 >= chunks) {
        body(c, i, bound(i), bound(i + 1));
        return;
      }
      Spec s = rt.fork(c, model, [this, i](Ctx& cc) { run(cc, i + 1); });
      body(c, i, bound(i), bound(i + 1));
      rt.join(c, s);
    }
  };
  Driver d{rt, begin, end, chunks, model, body};
  d.run(ctx, 0);
}

// In-order loop speculation driver (the paper's loop pattern, section II):
// splits [begin, end) into `chunks` contiguous pieces. Every chain link
// forks the continuation *detached* and executes its chunk; the calling
// thread then joins the chain link by link, adopting each link's child
// (paper IV-F: children survive the join). Each join frees a virtual CPU,
// which the chain tail immediately reuses — reproducing the steady-state
// redistribution of the paper's counter-based resumption, where with 64
// chunks speedup plateaus from 32 to 63 CPUs and jumps at 64. A link whose
// fork is denied simply continues the chain itself; a rolled-back link
// cascades (the rest of the chain is NOSYNCed and re-executed inline), the
// classic in-order rollback behaviour.
// The body receives (ctx, chunk_index, lo, hi).
template <typename BodyFn>
void spec_for(Runtime& rt, Ctx& ctx, int64_t begin, int64_t end, int chunks,
              ForkModel model, const BodyFn& body) {
  if (begin >= end || chunks <= 0) return;
  struct Driver {
    Runtime& rt;
    int64_t begin, end;
    int chunks;
    ForkModel model;
    const BodyFn& body;

    int64_t bound(int i) const {
      return begin + (end - begin) * i / chunks;
    }

    // Runs chunks starting at `i`: forks the continuation (detached) and
    // runs one chunk; on fork denial, keeps the chain alive by continuing
    // with the next chunk itself.
    void chain(Ctx& c, int i) const {
      while (true) {
        bool forked = false;
        if (i + 1 < chunks) {
          int next = i + 1;
          forked = rt.fork_tagged(c, model, static_cast<uint64_t>(next),
                                  [this, next](Ctx& cc) { chain(cc, next); });
        }
        body(c, i, bound(i), bound(i + 1));
        c.check_point();
        if (forked || i + 1 >= chunks) return;
        ++i;
      }
    }
  };
  Driver d{rt, begin, end, chunks, model, body};

  size_t base_children = ctx.thread_data().children.size();
  d.chain(ctx, 0);
  // Join the chain in logical order, adopting each link's child.
  while (ctx.thread_data().children.size() > base_children) {
    Runtime::AdoptedJoin j = rt.join_next(ctx);
    MUTLS_CHECK(j.joined, "loop chain lost a child");
    if (j.outcome == JoinOutcome::kRolledBack) {
      // In-order cascade: everything after the failed link is discarded
      // and re-executed inline from the failed link's first chunk.
      rt.manager().nosync_children(ctx.thread_data(), base_children);
      d.chain(ctx, static_cast<int>(j.tag));
    }
  }
}

}  // namespace mutls
