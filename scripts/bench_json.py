#!/usr/bin/env python3
"""Run the figure-reproduction benches and emit BENCH_results.json.

Seeds and extends the repo's perf trajectory: each invocation runs the
fig3..fig11 benches (plus the table2 harness) from a build directory,
captures wall time, exit status and the printed MEASURED/SIMULATED rows,
and writes one structured JSON document. Numeric-looking table rows are
parsed into (label, values) pairs so later tooling can diff runs without
re-parsing free text; the raw stdout is preserved verbatim as well.

Usage:
  scripts/bench_json.py --bench-dir build/bench [--out BENCH_results.json]
                        [--mode quick|full|paper] [--no-sim|--no-measured]
                        [--no-micro] [--no-ablation] [--no-sustained]
                        [--no-fig11] [--no-numa] [--baseline OLD.json]

The rollback-sensitivity bench (bench_fig11_rollback_sensitivity) is no
longer a prose figure: it sweeps a deterministic conflict kernel over
{rollback ratio x backend x prediction on/off} and emits one FIG11 line
per cell, parsed here into a validated fig11 section that fails loudly on
any missing cell of the matrix.

The NUMA scaling bench (bench_numa_scaling) contributes a numa_scaling
section: per-node-count cells of the kNumaSharded store and the per-node
idle freelists over faked topologies, validated for nonzero locality
counters (shard routing, cross-node work-stealing claims) and a zero
post-warm-up allocation count.

The sustained-load serving bench (bench_sustained_load) contributes a
sustained_load section: per-{backend x skew x batch} cells with req/s,
fork-to-settle latency percentiles, doom rate, alloc_events and a
validated duration_s field. It always runs at full duration (the committed
document must clear the >=1M fork/join floor); CI smoke uses the binary's
own --quick flag instead.

Besides the figure benches, the backend-sweeping microbenches
(bench_micro_runtime) and the buffer-map ablation (bench_ablation_buffer_map)
are run in JSON mode and their counters captured, so hot-path and backend
perf regressions trip the trajectory, not just correctness CI. --baseline
embeds the hot-path rows of a previous document under "baseline" for a
before/after record.

The CMake target `bench_json` wraps this with the default build tree.
"""

import argparse
import datetime
import json
import platform
import re
import subprocess
import sys
import time
from pathlib import Path

FIG_BENCHES = [
    "bench_fig3_compute_speedup",
    "bench_fig4_memory_speedup",
    "bench_fig5_critical_efficiency",
    "bench_fig6_speculative_efficiency",
    "bench_fig7_power_efficiency",
    "bench_fig8_critical_breakdown",
    "bench_fig9_speculative_breakdown",
    "bench_fig10_forking_models",
    "bench_table2_benchmarks",
]

# Rollback-sensitivity bench: a deterministic conflict kernel swept over
# {injected rollback ratio x backend x value prediction on/off}, one
# self-validating "FIG11 key=value ..." line per cell (the binary exits
# nonzero when prediction fails to save rollbacks at high ratios or any
# cell diverges from the sequential oracle). The full cell matrix is
# validated here so a ratio, backend or prediction arm silently dropping
# out of the sweep fails the run instead of shrinking the document.
FIG11_BENCH = "bench_fig11_rollback_sensitivity"
FIG11_RATIO_PCTS = (1, 5, 10, 20, 50, 100)
FIG11_PREDICT = ("off", "on")
FIG11_CELL_KEYS = ("epochs", "conflicts", "commits", "rollbacks",
                   "predicted_reads", "predictor_hits",
                   "predictor_mispredicts", "saved_rollbacks", "wall_ns",
                   "epochs_per_s")

# Google-Benchmark binaries whose buffered benches sweep the SpecBuffer
# backends; their per-run counters (resize_events, avg_probe_len,
# validated_words, overflow_events, fastpath_hits, mru_hits/misses,
# probe_skips, backend_flips, the fork-latency ledger split) are the cost
# breakdown behind any backend or hot-path comparison, so they ride along
# in the JSON document. The ablation binary rides along too so a backend
# perf regression trips the perf trajectory, not just correctness CI.
MICRO_BENCH = "bench_micro_runtime"
MICRO_FILTER = "Buffered|ForkJoin"
ABLATION_BENCH = "bench_ablation_buffer_map"
ABLATION_FILTER = "SpecBuffer|ValidateCommit|OverCapacity|ResetSmall"

# Sustained-load serving bench: duration-based sweep over
# {backend x key-skew x batch size}, reporting req/s, fork-to-settle
# latency percentiles and the doom rate per cell. Parsed from the
# machine-readable "SUSTAINED key=value ..." lines into the sustained_load
# section. Every backend must report BOTH skews — a missing cell means the
# sweep silently lost a contestant.
SUSTAINED_BENCH = "bench_sustained_load"
SUSTAINED_SKEWS = ("uniform", "zipf-1.1")
# Fields every cell must carry; duration_s in particular is validated so a
# cell that stopped measuring its window cannot slip into the document.
SUSTAINED_CELL_KEYS = ("duration_s", "req_per_s", "p50_ns", "p99_ns",
                       "p999_ns", "doom_rate", "alloc_events")

# Every backend the swept benches must report. A backend silently missing
# from a sweep (dropped Arg, renamed label, dispatch regression) would
# otherwise just shrink the document — fail loudly instead.
EXPECTED_BACKENDS = ("static-hash", "growable-log", "adaptive",
                     "numa-sharded")

# NUMA scaling bench: the kNumaSharded store and the per-node idle
# freelists swept over faked topology shapes, one "NUMA key=value ..."
# line per node count. Validated into the numa_scaling section: every
# node count must report, with nonzero shard routing everywhere, nonzero
# work-stealing claims on the multi-node shapes, local commit words on
# the single-shard shape, and a zero post-warm-up allocation count.
NUMA_BENCH = "bench_numa_scaling"
NUMA_NODE_COUNTS = (1, 2, 4)
NUMA_CELL_KEYS = ("wall_s", "forks", "cross_node_claims",
                  "shard_probe_steps", "local_commit_words", "commits",
                  "rollbacks", "alloc_events")

# Execution-engine dispatch microbench: the native-kernel IR programs swept
# over {dispatch mode x buffer backend}, one self-validating "DISPATCH
# key=value ..." line per cell (the binary exits nonzero on a wrong kernel
# result). Parsed into the interp_dispatch section; the full kernel x mode
# x backend matrix is validated, so a dispatch tier silently dropping out
# of the sweep fails the run instead of shrinking the document.
DISPATCH_BENCH = "bench_interp_dispatch"
DISPATCH_KERNELS = ("fib", "fill")
DISPATCH_MODES = ("switch", "direct-threaded", "compiled-region")
DISPATCH_CELL_KEYS = ("wall_ns", "iters", "instrs", "ns_per_instr",
                      "back_edges", "commits", "rollbacks")

# Counters copied out of a Google-Benchmark JSON run when present.
COUNTER_KEYS = (
    "items_per_second", "resize_events", "overflow_events",
    "validated_words", "avg_probe_len", "rollbacks", "commits",
    "fastpath_hits", "mru_hits", "mru_misses", "probe_skips",
    "backend_flips", "alloc_events",
    "predicted_reads", "predictor_hits", "predictor_mispredicts",
    "saved_rollbacks",
    "find_cpu_ns", "fork_arm_ns", "fork_handoff_ns", "join_ns",
    "resizes", "overflow_dooms", "doom_rate", "real_time", "cpu_time",
)

# Value-prediction counters every buffer-counter run must keep reporting
# (the --micro-only gate fails when one goes missing, like alloc_events).
PREDICT_COUNTER_KEYS = ("predicted_reads", "predictor_hits",
                        "predictor_mispredicts", "saved_rollbacks")

NUM_RE = re.compile(r"^-?\d+(\.\d+)?[x%]?$")


def parse_rows(stdout: str):
    """Extract (label, [numbers]) rows from a bench's table output."""
    rows = []
    for line in stdout.splitlines():
        tokens = line.split()
        if len(tokens) < 2:
            continue
        values = []
        for tok in tokens[1:]:
            if NUM_RE.match(tok):
                values.append(float(tok.rstrip("x%")))
        # A data row has a non-numeric label and mostly numeric columns.
        if values and not NUM_RE.match(tokens[0]) and \
                len(values) >= (len(tokens) - 1) / 2:
            rows.append({"label": " ".join(
                t for t in tokens if not NUM_RE.match(t)), "values": values})
    return rows


def run_gbench(bench_dir: Path, name: str, bfilter: str, timeout: int,
               quick: bool):
    """Run one Google-Benchmark binary, returning counter rows."""
    exe = bench_dir / name
    entry = {"bench": name, "status": "missing"}
    if not exe.exists():
        return entry
    cmd = [str(exe), f"--benchmark_filter={bfilter}",
           "--benchmark_format=json"]
    if quick:
        # Plain double, not "0.05s": old libbenchmark rejects the suffix
        # while 1.8+ merely warns about the missing one.
        cmd.append("--benchmark_min_time=0.05")
    start = time.monotonic()
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=timeout)
        entry["seconds"] = round(time.monotonic() - start, 3)
        entry["exit_code"] = proc.returncode
        if proc.returncode != 0:
            entry["status"] = "failed"
            entry["stderr"] = proc.stderr.splitlines()
            return entry
        doc = json.loads(proc.stdout)
        runs = []
        for b in doc.get("benchmarks", []):
            run = {"name": b.get("name"), "backend": b.get("label")}
            for key in COUNTER_KEYS:
                if key in b:
                    run[key] = b[key]
            runs.append(run)
        entry["status"] = "ok"
        entry["runs"] = runs
        # A backend-swept binary must actually report every backend: a
        # missing label means the sweep silently lost a contestant.
        swept = {r["backend"] for r in runs if r.get("backend")}
        missing = [b for b in EXPECTED_BACKENDS if b not in swept]
        if swept and missing:
            entry["status"] = "missing-backend"
            entry["missing_backends"] = missing
            print(f"[bench_json] {name}: swept backends {sorted(swept)} "
                  f"are missing {missing}", file=sys.stderr)
    except subprocess.TimeoutExpired:
        entry["status"] = "timeout"
        entry["seconds"] = round(time.monotonic() - start, 3)
    except (json.JSONDecodeError, OSError) as e:
        entry["status"] = "failed"
        entry["error"] = str(e)
    return entry


def check_alloc_budget(entry):
    """Enforce the zero-allocation steady-state budget on the microbench.

    Every microbench run reports alloc_events — the runtime's own count of
    arena heap-fallback allocations after its warm-up window. A nonzero
    value is a regression of the zero-allocation invariant; a *missing*
    counter means the bench silently stopped measuring it. Both flip the
    entry's status so the exit code fails the CI step loudly.

    The same presence check covers the value-prediction counters: every
    run that carries the buffer cost breakdown (validated_words) must also
    carry predicted_reads/predictor_hits/predictor_mispredicts/
    saved_rollbacks. alloc_events staying zero alongside them is what
    proves the predictor table is arena-backed — enabling the feature must
    not reintroduce steady-state heap traffic.
    """
    if entry.get("status") != "ok":
        return entry
    missing = [r.get("name") for r in entry.get("runs", [])
               if "alloc_events" not in r]
    if missing:
        entry["status"] = "missing-counter"
        entry["missing_alloc_events"] = missing
        print(f"[bench_json] {entry['bench']}: runs missing the "
              f"alloc_events counter: {missing}", file=sys.stderr)
        return entry
    missing_predict = [
        r.get("name") for r in entry.get("runs", [])
        if "validated_words" in r
        and any(k not in r for k in PREDICT_COUNTER_KEYS)]
    if missing_predict:
        entry["status"] = "missing-counter"
        entry["missing_prediction_counters"] = missing_predict
        print(f"[bench_json] {entry['bench']}: runs missing prediction "
              f"counters: {missing_predict}", file=sys.stderr)
        return entry
    over = [{"name": r.get("name"), "alloc_events": r["alloc_events"]}
            for r in entry.get("runs", []) if r["alloc_events"] > 0]
    if over:
        entry["status"] = "alloc-budget-exceeded"
        entry["over_budget"] = over
        print(f"[bench_json] {entry['bench']}: steady-state allocation "
              f"budget exceeded: {over}", file=sys.stderr)
    return entry


def parse_kv_line(line: str):
    """Parse one 'PREFIX key=value key=value ...' line into a dict."""
    out = {}
    for tok in line.split()[1:]:
        key, sep, val = tok.partition("=")
        if not sep:
            continue
        try:
            out[key] = int(val)
        except ValueError:
            try:
                out[key] = float(val)
            except ValueError:
                out[key] = val
    return out


def run_sustained(bench_dir: Path, timeout: int):
    """Run the sustained-load serving bench and validate its cell matrix.

    Always runs at the binary's full duration and fork/join floor — even in
    --mode quick — because the committed BENCH_results.json must be a
    steady-state sample (>=1M fork/joins, zero post-warm-up allocations);
    the cheap smoke path is the binary's own --quick flag in CI.
    """
    exe = bench_dir / SUSTAINED_BENCH
    entry = {"bench": SUSTAINED_BENCH, "status": "missing"}
    if not exe.exists():
        return entry
    start = time.monotonic()
    try:
        proc = subprocess.run([str(exe)], capture_output=True, text=True,
                              timeout=timeout)
    except subprocess.TimeoutExpired:
        entry["status"] = "timeout"
        entry["seconds"] = round(time.monotonic() - start, 3)
        return entry
    entry["seconds"] = round(time.monotonic() - start, 3)
    entry["exit_code"] = proc.returncode
    cells, total = [], {}
    for line in proc.stdout.splitlines():
        if line.startswith("SUSTAINED_TOTAL "):
            total = parse_kv_line(line)
        elif line.startswith("SUSTAINED backend="):
            cells.append(parse_kv_line(line))
    entry["cells"] = cells
    entry["total"] = total
    if proc.returncode != 0:
        # The binary polices its own floor and allocation budget.
        entry["status"] = "failed"
        entry["stderr"] = proc.stderr.splitlines()
        return entry

    # Cell-matrix validation: every backend, under both skews, with every
    # required field — and a positive measured duration per cell.
    problems = []
    seen = {}
    for c in cells:
        missing = [k for k in SUSTAINED_CELL_KEYS if k not in c]
        if missing:
            problems.append(f"cell {c.get('backend')}/{c.get('skew')} "
                            f"missing {missing}")
            continue
        if c["duration_s"] <= 0:
            problems.append(f"cell {c.get('backend')}/{c.get('skew')} has "
                            f"non-positive duration_s")
        seen.setdefault(c.get("backend"), set()).add(c.get("skew"))
    for backend in EXPECTED_BACKENDS:
        missing_skews = [s for s in SUSTAINED_SKEWS
                         if s not in seen.get(backend, set())]
        if missing_skews:
            problems.append(f"backend {backend} missing skew cells: "
                            f"{missing_skews}")
    if "duration_s" not in total or total.get("duration_s", 0) <= 0:
        problems.append("SUSTAINED_TOTAL missing a positive duration_s")
    if any(c.get("alloc_events") for c in cells):
        problems.append("post-warm-up allocations in a sustained cell")
    if problems:
        entry["status"] = "missing-backend" if any(
            "backend" in p for p in problems) else "invalid"
        entry["problems"] = problems
        for p in problems:
            print(f"[bench_json] {SUSTAINED_BENCH}: {p}", file=sys.stderr)
        return entry
    entry["status"] = "ok"
    return entry


def run_dispatch(bench_dir: Path, timeout: int, quick: bool):
    """Run the dispatch-tier microbench and validate its cell matrix.

    Every kernel must report every dispatch mode under every buffer
    backend, each cell with every required field. A missing dispatch mode
    is the loud failure this section exists for: it means a tier fell out
    of the sweep (decode regression, renamed mode, dropped kernel), which
    a shrinking document would otherwise hide.
    """
    exe = bench_dir / DISPATCH_BENCH
    entry = {"bench": DISPATCH_BENCH, "status": "missing"}
    if not exe.exists():
        return entry
    cmd = [str(exe)] + (["--quick"] if quick else [])
    start = time.monotonic()
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=timeout)
    except subprocess.TimeoutExpired:
        entry["status"] = "timeout"
        entry["seconds"] = round(time.monotonic() - start, 3)
        return entry
    entry["seconds"] = round(time.monotonic() - start, 3)
    entry["exit_code"] = proc.returncode
    cells, heat = [], []
    for line in proc.stdout.splitlines():
        if line.startswith("DISPATCH_HEAT "):
            heat.append(parse_kv_line(line))
        elif line.startswith("DISPATCH "):
            cells.append(parse_kv_line(line))
    entry["cells"] = cells
    entry["region_heat"] = heat
    if proc.returncode != 0:
        # The binary validates kernel results and native-body registration.
        entry["status"] = "failed"
        entry["stderr"] = proc.stderr.splitlines()
        return entry

    problems = []
    seen = {}
    for c in cells:
        missing = [k for k in DISPATCH_CELL_KEYS if k not in c]
        if missing:
            problems.append(f"cell {c.get('kernel')}/{c.get('mode')}/"
                            f"{c.get('backend')} missing {missing}")
            continue
        if c["wall_ns"] <= 0:
            problems.append(f"cell {c.get('kernel')}/{c.get('mode')}/"
                            f"{c.get('backend')} has non-positive wall_ns")
        seen.setdefault((c.get("kernel"), c.get("backend")),
                        set()).add(c.get("mode"))
    missing_mode = False
    for kernel in DISPATCH_KERNELS:
        for backend in EXPECTED_BACKENDS:
            modes = seen.get((kernel, backend), set())
            lost = [m for m in DISPATCH_MODES if m not in modes]
            if lost:
                missing_mode = True
                problems.append(f"kernel {kernel} backend {backend} "
                                f"missing dispatch modes: {lost}")
    if problems:
        entry["status"] = "missing-dispatch-mode" if missing_mode \
            else "invalid"
        entry["problems"] = problems
        for p in problems:
            print(f"[bench_json] {DISPATCH_BENCH}: {p}", file=sys.stderr)
        return entry
    entry["status"] = "ok"
    return entry


def run_numa(bench_dir: Path, timeout: int, quick: bool):
    """Run the NUMA scaling sweep and validate its cell matrix.

    Every faked node count must report a kNumaSharded cell with every
    required field; the locality counters must prove the machinery
    actually engaged (routing decisions everywhere, cross-node steals on
    multi-node shapes) and the steady state must stay allocation-free.
    A missing or mislabeled backend fails the run loudly: the section
    exists to catch the sharded store falling out of the sweep.
    """
    exe = bench_dir / NUMA_BENCH
    entry = {"bench": NUMA_BENCH, "status": "missing"}
    if not exe.exists():
        return entry
    cmd = [str(exe)] + (["--quick"] if quick else [])
    start = time.monotonic()
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=timeout)
    except subprocess.TimeoutExpired:
        entry["status"] = "timeout"
        entry["seconds"] = round(time.monotonic() - start, 3)
        return entry
    entry["seconds"] = round(time.monotonic() - start, 3)
    entry["exit_code"] = proc.returncode
    cells = [parse_kv_line(line) for line in proc.stdout.splitlines()
             if line.startswith("NUMA nodes=")]
    entry["cells"] = cells
    if proc.returncode != 0:
        # The binary polices its own locality and allocation invariants.
        entry["status"] = "failed"
        entry["stderr"] = proc.stderr.splitlines()
        return entry

    problems = []
    seen = {}
    for c in cells:
        if c.get("backend") != "numa-sharded":
            problems.append(f"cell nodes={c.get('nodes')} reports backend "
                            f"{c.get('backend')!r}, not numa-sharded")
            continue
        missing = [k for k in NUMA_CELL_KEYS if k not in c]
        if missing:
            problems.append(f"cell nodes={c.get('nodes')} missing {missing}")
            continue
        seen[c.get("nodes")] = c
    missing_backend = False
    for nodes in NUMA_NODE_COUNTS:
        c = seen.get(nodes)
        if c is None:
            missing_backend = True
            problems.append(f"numa-sharded cell for nodes={nodes} missing")
            continue
        if c["shard_probe_steps"] <= 0:
            problems.append(f"nodes={nodes}: no shard routing recorded")
        if nodes > 1 and c["cross_node_claims"] <= 0:
            problems.append(f"nodes={nodes}: no work-stealing claims")
        if nodes == 1 and c["local_commit_words"] <= 0:
            problems.append("nodes=1: the single shard must commit locally")
        if c["alloc_events"] != 0:
            problems.append(f"nodes={nodes}: post-warm-up allocations")
    if problems:
        entry["status"] = "missing-backend" if missing_backend else "invalid"
        entry["problems"] = problems
        for p in problems:
            print(f"[bench_json] {NUMA_BENCH}: {p}", file=sys.stderr)
        return entry
    entry["status"] = "ok"
    return entry


def run_fig11(bench_dir: Path, timeout: int, quick: bool):
    """Run the rollback-sensitivity sweep and validate its cell matrix.

    Every backend must report every {ratio x prediction} cell with every
    required field — a missing cell means the sweep silently lost a
    contestant (dropped backend, renamed predict arm, truncated ratio
    sweep), which a shrinking document would otherwise hide. The binary
    polices semantics itself (sequential-oracle divergence, prediction
    counters leaking into predict=off cells, saved_rollbacks == 0 at high
    ratios) and exits nonzero.
    """
    exe = bench_dir / FIG11_BENCH
    entry = {"bench": FIG11_BENCH, "status": "missing"}
    if not exe.exists():
        return entry
    cmd = [str(exe)] + (["--quick"] if quick else [])
    start = time.monotonic()
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=timeout)
    except subprocess.TimeoutExpired:
        entry["status"] = "timeout"
        entry["seconds"] = round(time.monotonic() - start, 3)
        return entry
    entry["seconds"] = round(time.monotonic() - start, 3)
    entry["exit_code"] = proc.returncode
    cells, total = [], {}
    for line in proc.stdout.splitlines():
        if line.startswith("FIG11_TOTAL "):
            total = parse_kv_line(line)
        elif line.startswith("FIG11 "):
            cells.append(parse_kv_line(line))
    entry["cells"] = cells
    entry["total"] = total
    if proc.returncode != 0:
        entry["status"] = "failed"
        entry["stderr"] = proc.stderr.splitlines()
        return entry

    problems = []
    seen = {}
    for c in cells:
        missing = [k for k in FIG11_CELL_KEYS if k not in c]
        if missing:
            problems.append(f"cell {c.get('backend')}/{c.get('ratio_pct')}/"
                            f"predict={c.get('predict')} missing {missing}")
            continue
        if c["epochs"] <= 0 or c["wall_ns"] <= 0:
            problems.append(f"cell {c.get('backend')}/{c.get('ratio_pct')}/"
                            f"predict={c.get('predict')} has a non-positive "
                            f"epochs/wall_ns")
        seen.setdefault(c.get("backend"), set()).add(
            (c.get("ratio_pct"), c.get("predict")))
    missing_backend = False
    for backend in EXPECTED_BACKENDS:
        cells_seen = seen.get(backend, set())
        if not cells_seen:
            missing_backend = True
            problems.append(f"backend {backend} missing entirely")
            continue
        lost = [f"{pct}%/predict={p}" for pct in FIG11_RATIO_PCTS
                for p in FIG11_PREDICT if (pct, p) not in cells_seen]
        if lost:
            problems.append(f"backend {backend} missing cells: {lost}")
    if problems:
        entry["status"] = "missing-backend" if missing_backend else "invalid"
        entry["problems"] = problems
        for p in problems:
            print(f"[bench_json] {FIG11_BENCH}: {p}", file=sys.stderr)
        return entry
    entry["status"] = "ok"
    return entry


def extract_baseline(path: Path):
    """Pull the perf-trajectory rows out of a previous results document.

    Embedded under "baseline" in the new document so a before/after
    comparison of the hot paths travels with the run that changed them.
    """
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        return {"status": "unreadable", "error": str(e)}
    keep = {}
    for bench in doc.get("benches", []):
        name = bench.get("bench")
        if name in (MICRO_BENCH, ABLATION_BENCH) and "runs" in bench:
            keep[name] = bench["runs"]
        elif name == "bench_fig3_compute_speedup" and "rows" in bench:
            keep[name] = bench["rows"]
    return {"status": "ok", "git_rev": doc.get("git_rev", "unknown"),
            "generated_utc": doc.get("generated_utc"), "benches": keep}


def git_rev(repo: Path) -> str:
    try:
        rev = subprocess.run(
            ["git", "-C", str(repo), "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10).stdout.strip()
        return rev or "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--bench-dir", required=True,
                    help="directory containing the built bench binaries")
    ap.add_argument("--out", default="BENCH_results.json")
    ap.add_argument("--mode", choices=["quick", "full", "paper"],
                    default="quick",
                    help="workload sizes: quick (CI smoke), full, paper")
    ap.add_argument("--no-sim", action="store_true")
    ap.add_argument("--no-measured", action="store_true")
    ap.add_argument("--no-micro", action="store_true",
                    help="skip the backend-sweeping microbench counters")
    ap.add_argument("--micro-only", action="store_true",
                    help="run only the microbench sweep (the CI allocation-"
                         "budget gate), skipping figures and ablation")
    ap.add_argument("--no-ablation", action="store_true",
                    help="skip the buffer-map ablation sweep")
    ap.add_argument("--no-sustained", action="store_true",
                    help="skip the sustained-load serving sweep")
    ap.add_argument("--no-dispatch", action="store_true",
                    help="skip the dispatch-tier microbench sweep")
    ap.add_argument("--no-fig11", action="store_true",
                    help="skip the rollback-sensitivity (value prediction) "
                         "sweep")
    ap.add_argument("--no-numa", action="store_true",
                    help="skip the NUMA scaling (sharded store + per-node "
                         "freelist) sweep")
    ap.add_argument("--baseline", default=None,
                    help="previous BENCH_results.json whose hot-path rows "
                         "are embedded as the before of a before/after")
    ap.add_argument("--timeout", type=int, default=1800,
                    help="per-bench timeout in seconds")
    args = ap.parse_args()

    bench_dir = Path(args.bench_dir)
    flags = []
    if args.mode == "quick":
        flags.append("--quick")
    elif args.mode == "paper":
        flags.append("--paper")
    if args.no_sim:
        flags.append("--no-sim")
    if args.no_measured:
        flags.append("--no-measured")

    repo = Path(__file__).resolve().parent.parent
    results = []
    for name in [] if args.micro_only else FIG_BENCHES:
        exe = bench_dir / name
        if not exe.exists():
            results.append({"bench": name, "status": "missing"})
            print(f"[bench_json] {name}: MISSING", file=sys.stderr)
            continue
        start = time.monotonic()
        try:
            proc = subprocess.run([str(exe), *flags], capture_output=True,
                                  text=True, timeout=args.timeout)
            status = "ok" if proc.returncode == 0 else "failed"
            entry = {
                "bench": name,
                "status": status,
                "exit_code": proc.returncode,
                "seconds": round(time.monotonic() - start, 3),
                "rows": parse_rows(proc.stdout),
                "stdout": proc.stdout.splitlines(),
            }
            # fig3/fig4 assert on their measured speedups when the box has
            # enough hardware threads; keep the machine-readable verdict
            # (ok / skipped / fail) in the document either way.
            for line in proc.stdout.splitlines():
                if line.startswith("SPEEDUP-GATE "):
                    entry["speedup_gate"] = parse_kv_line(line)
            if proc.stderr.strip():
                entry["stderr"] = proc.stderr.splitlines()
        except subprocess.TimeoutExpired:
            entry = {"bench": name, "status": "timeout",
                     "seconds": round(time.monotonic() - start, 3)}
        results.append(entry)
        print(f"[bench_json] {name}: {entry['status']} "
              f"({entry.get('seconds', 0)}s)", file=sys.stderr)

    if not args.no_micro:
        entry = run_gbench(bench_dir, MICRO_BENCH, MICRO_FILTER,
                           args.timeout, args.mode == "quick")
        entry = check_alloc_budget(entry)
        results.append(entry)
        print(f"[bench_json] {MICRO_BENCH}: {entry['status']} "
              f"({entry.get('seconds', 0)}s)", file=sys.stderr)

    if not args.no_ablation and not args.micro_only:
        entry = run_gbench(bench_dir, ABLATION_BENCH, ABLATION_FILTER,
                           args.timeout, args.mode == "quick")
        results.append(entry)
        print(f"[bench_json] {ABLATION_BENCH}: {entry['status']} "
              f"({entry.get('seconds', 0)}s)", file=sys.stderr)

    if not args.no_sustained and not args.micro_only:
        entry = run_sustained(bench_dir, args.timeout)
        results.append(entry)
        print(f"[bench_json] {SUSTAINED_BENCH}: {entry['status']} "
              f"({entry.get('seconds', 0)}s)", file=sys.stderr)

    if not args.no_dispatch and not args.micro_only:
        entry = run_dispatch(bench_dir, args.timeout, args.mode == "quick")
        results.append(entry)
        print(f"[bench_json] {DISPATCH_BENCH}: {entry['status']} "
              f"({entry.get('seconds', 0)}s)", file=sys.stderr)

    if not args.no_fig11 and not args.micro_only:
        entry = run_fig11(bench_dir, args.timeout, args.mode == "quick")
        results.append(entry)
        print(f"[bench_json] {FIG11_BENCH}: {entry['status']} "
              f"({entry.get('seconds', 0)}s)", file=sys.stderr)

    if not args.no_numa and not args.micro_only:
        entry = run_numa(bench_dir, args.timeout, args.mode == "quick")
        results.append(entry)
        print(f"[bench_json] {NUMA_BENCH}: {entry['status']} "
              f"({entry.get('seconds', 0)}s)", file=sys.stderr)

    doc = {
        "schema": "mutls-bench-results/1",
        "generated_utc": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "git_rev": git_rev(repo),
        "mode": args.mode,
        "flags": flags,
        "host": {
            "machine": platform.machine(),
            "system": platform.system(),
            "release": platform.release(),
        },
        "benches": results,
    }
    if args.baseline:
        doc["baseline"] = extract_baseline(Path(args.baseline))
    Path(args.out).write_text(json.dumps(doc, indent=1) + "\n")
    print(f"[bench_json] wrote {args.out}", file=sys.stderr)
    failed = [r["bench"] for r in results if r.get("status") != "ok"]
    if failed:
        print(f"[bench_json] FAILED: {', '.join(failed)}", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
