#include "runtime/growable_log_buffer.h"

#include <cstring>

namespace mutls {

namespace {
// Initial dense-log capacity (entries). Matches the old std::vector
// reserve: small speculations never grow the log, and one pool class holds
// it for every slot.
constexpr size_t kInitialLogCap = 1024;
}  // namespace

void GrowableSet::init(int log2_entries, SpecBufferStats* stats,
                       int max_log2, Arena* arena) {
  MUTLS_CHECK(log2_entries >= 4 && log2_entries <= kMaxLog2,
              "buffer log2 size out of range");
  MUTLS_CHECK(max_log2 >= log2_entries && max_log2 <= kMaxLog2,
              "growable hard cap out of range");
  // Re-init releases prior storage through the arena it was grabbed from
  // before re-binding (the arrays may shrink back to the initial sizes;
  // the pool keeps the released blocks for the next growth).
  release_storage();
  arena_ = arena;
  log2_ = log2_entries;
  shift_ = 64 - log2_;
  max_log2_ = max_log2;
  const size_t cap = size_t{1} << log2_;
  index_ = static_cast<uint32_t*>(arena_grab(arena_, cap * sizeof(uint32_t)));
  std::memset(index_, 0, cap * sizeof(uint32_t));
  log_cap_ = kInitialLogCap;
  log_ = static_cast<Entry*>(arena_grab(arena_, log_cap_ * sizeof(Entry)));
  log_size_ = 0;
  resized_this_epoch_ = false;
  stats_ = stats;
}

void GrowableSet::release_storage() {
  if (index_ != nullptr) {
    arena_release(arena_, index_, (size_t{1} << log2_) * sizeof(uint32_t));
    index_ = nullptr;
  }
  if (log_ != nullptr) {
    arena_release(arena_, log_, log_cap_ * sizeof(Entry));
    log_ = nullptr;
  }
  log_size_ = 0;
  log_cap_ = 0;
}

GrowableSet::Entry& GrowableSet::find_or_insert(uintptr_t word_addr,
                                                bool& inserted) {
  MUTLS_DCHECK((word_addr & kWordMask) == 0, "unaligned word address");
  MUTLS_DCHECK(!at_hard_capacity(),
               "insert into a growable set at hard capacity (the owning "
               "buffer must doom first)");
  const size_t mask = capacity() - 1;
  size_t idx = home_slot(word_addr);
  ++stats_->probe_ops;
  while (true) {
    uint32_t pos = index_[idx];
    if (pos == 0) {
      // Insert path only: keep the load factor at or below 3/4 so probe
      // sequences stay short (a lookup hit must never pay a rehash); past
      // max_log2_ the factor rises instead (the caller dooms before the
      // table could actually fill).
      if (log_size_ + 1 > capacity() - capacity() / 4 &&
          log2_ < max_log2_) {
        grow();
        // Re-probe for the empty slot in the grown index.
        const size_t grown_mask = capacity() - 1;
        idx = home_slot(word_addr);
        while (index_[idx] != 0) idx = (idx + 1) & grown_mask;
      }
      if (log_size_ == log_cap_) grow_log();
      log_[log_size_] = Entry{word_addr, 0, 0, static_cast<uint32_t>(idx)};
      ++log_size_;
      index_[idx] = static_cast<uint32_t>(log_size_);
      inserted = true;
      return log_[log_size_ - 1];
    }
    Entry& e = log_[pos - 1];
    if (e.word_addr == word_addr) {
      inserted = false;
      return e;
    }
    ++stats_->probe_steps;
    idx = (idx + 1) & mask;
  }
}

GrowableSet::Entry* GrowableSet::find(uintptr_t word_addr) {
  if (index_ == nullptr) return nullptr;
  const size_t mask = capacity() - 1;
  size_t idx = home_slot(word_addr);
  ++stats_->probe_ops;
  while (true) {
    uint32_t pos = index_[idx];
    if (pos == 0) return nullptr;
    Entry& e = log_[pos - 1];
    if (e.word_addr == word_addr) return &e;
    ++stats_->probe_steps;
    idx = (idx + 1) & mask;
  }
}

void GrowableSet::rebuild_index(int new_log2) {
  arena_release(arena_, index_, (size_t{1} << log2_) * sizeof(uint32_t));
  log2_ = new_log2;
  shift_ = 64 - log2_;
  const size_t cap = size_t{1} << log2_;
  index_ = static_cast<uint32_t*>(arena_grab(arena_, cap * sizeof(uint32_t)));
  std::memset(index_, 0, cap * sizeof(uint32_t));
  const size_t mask = cap - 1;
  // Rehash from the dense log; re-probe costs are part of the resize, not
  // the per-access probe counters.
  for (size_t i = 0; i < log_size_; ++i) {
    size_t idx = home_slot(log_[i].word_addr);
    while (index_[idx] != 0) idx = (idx + 1) & mask;
    index_[idx] = static_cast<uint32_t>(i + 1);
    log_[i].slot = static_cast<uint32_t>(idx);
  }
}

void GrowableSet::grow() {
  resized_this_epoch_ = true;
  ++stats_->resize_events;
  rebuild_index(log2_ + 1);
}

void GrowableSet::grow_log() {
  const size_t cap = log_cap_ * 2;
  Entry* fresh = static_cast<Entry*>(arena_grab(arena_, cap * sizeof(Entry)));
  std::memcpy(fresh, log_, log_size_ * sizeof(Entry));
  arena_release(arena_, log_, log_cap_ * sizeof(Entry));
  log_ = fresh;
  log_cap_ = cap;
}

void GrowableSet::reserve_entries(size_t entries) {
  if (entries == 0 || index_ == nullptr) return;
  if (entries > log_cap_) {
    size_t cap = log_cap_;
    while (cap < entries) cap *= 2;
    Entry* fresh =
        static_cast<Entry*>(arena_grab(arena_, cap * sizeof(Entry)));
    std::memcpy(fresh, log_, log_size_ * sizeof(Entry));
    arena_release(arena_, log_, log_cap_ * sizeof(Entry));
    log_ = fresh;
    log_cap_ = cap;
  }
  int target = log2_;
  while (target < max_log2_ &&
         entries > (size_t{1} << target) - (size_t{1} << target) / 4) {
    ++target;
  }
  if (target != log2_) rebuild_index(target);
}

void GrowableSet::clear() {
  for (size_t i = 0; i < log_size_; ++i) index_[log_[i].slot] = 0;
  log_size_ = 0;
  resized_this_epoch_ = false;
}

void GrowableLogBuffer::init(int log2_entries, size_t overflow_cap,
                             SpecBufferStats* stats, int max_log2,
                             Arena* arena) {
  (void)overflow_cap;  // no bounded overflow in this backend
  stats_ = stats;
  read_set_.init(log2_entries, stats, max_log2, arena);
  write_set_.init(log2_entries, stats, max_log2, arena);
}

WordRef GrowableLogBuffer::find_read(uintptr_t word_addr) {
  GrowableSet::Entry* e = read_set_.find(word_addr);
  return e ? WordRef{&e->data, nullptr, read_set_.position_of(e)} : WordRef{};
}

WordRef GrowableLogBuffer::find_write(uintptr_t word_addr) {
  GrowableSet::Entry* e = write_set_.find(word_addr);
  return e ? WordRef{&e->data, &e->mark, write_set_.position_of(e)}
           : WordRef{};
}

WordRef GrowableLogBuffer::insert_read(uintptr_t word_addr, bool& inserted,
                                       bool merging) {
  if (read_set_.at_hard_capacity()) {
    doom(merging ? "read-set exhausted the maximum growable index while "
                   "adopting a child commit"
                 : "read-set exhausted the maximum growable index");
    ++stats_->overflow_events;
    return WordRef{};
  }
  GrowableSet::Entry& e = read_set_.find_or_insert(word_addr, inserted);
  return WordRef{&e.data, nullptr, read_set_.position_of(&e)};
}

WordRef GrowableLogBuffer::insert_write(uintptr_t word_addr, bool merging) {
  if (write_set_.at_hard_capacity()) {
    doom(merging ? "write-set exhausted the maximum growable index while "
                   "adopting a child commit"
                 : "write-set exhausted the maximum growable index");
    ++stats_->overflow_events;
    return WordRef{};
  }
  bool inserted = false;
  GrowableSet::Entry& e = write_set_.find_or_insert(word_addr, inserted);
  return WordRef{&e.data, &e.mark, write_set_.position_of(&e)};
}

void GrowableLogBuffer::reset() {
  read_set_.clear();
  write_set_.clear();
  doomed_ = false;
  doom_reason_ = "";
  // The stats block belongs to the owning SpecBuffer and intentionally
  // survives reset: the settle paths read the counters after resetting.
}

}  // namespace mutls
